//! Seed sweep for the subscriber-backpressure chaos axis: every seed
//! must satisfy the broker/subscriber contract (conservation, typed
//! ledgering, exact state convergence), and across the sweep every
//! failure dynamic — slow-client eviction, voluntary departure,
//! mid-stream reconnect — must actually fire.

use chaos::subscriber::{run_seed, run_with, ClientProfile};

#[test]
fn sweep_seeds_hold_the_contract_and_cover_every_dynamic() {
    let mut evicted = 0;
    let mut gone = 0;
    let mut reconnects = 0;
    let mut dropped = 0u64;
    let mut undelivered = 0u64;
    for seed in 0..64 {
        let out = run_seed(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        assert_eq!(
            out.connections as usize,
            out.evicted_too_slow + out.departures_gone + out.departures_shutdown,
            "seed {seed}: every connection must be ledgered exactly once"
        );
        evicted += out.evicted_too_slow;
        gone += out.departures_gone;
        reconnects += out.reconnects;
        dropped += out.frames_dropped;
        undelivered += out.undelivered;
    }
    assert!(evicted > 0, "no seed produced a TooSlow eviction");
    assert!(gone > 0, "no seed produced a voluntary departure");
    assert!(reconnects > 0, "no seed exercised a reconnect");
    assert!(dropped > 0, "no seed saturated an egress window");
    assert!(undelivered > 0, "no seed departed with pending frames");
}

#[test]
fn seeds_are_deterministic() {
    for seed in [0, 7, 23, 41, 63] {
        let a = run_seed(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        let b = run_seed(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        assert_eq!(a, b, "seed {seed} diverged between runs");
    }
}

#[test]
fn slow_client_degrades_but_survives() {
    // A slow drainer oscillates between degraded and resynced; it must
    // reach shutdown (never evicted) with dropped frames on its record.
    let out = run_with(
        1,
        &[
            (ClientProfile::Healthy, false),
            (ClientProfile::Slow, false),
        ],
        12,
    )
    .expect("contract holds");
    assert_eq!(out.evicted_too_slow, 0);
    assert_eq!(out.departures_shutdown, 2);
    assert!(out.frames_dropped > 0, "slow client never saturated");
    assert!(
        out.snapshots_applied > 2,
        "slow client was never snapshot-resynced"
    );
}

#[test]
fn every_profile_together_converges() {
    let out = run_with(
        2,
        &[
            (ClientProfile::Healthy, false),
            (ClientProfile::Healthy, true),
            (ClientProfile::Slow, false),
            (ClientProfile::Stalled { after_window: 2 }, false),
            (ClientProfile::Disconnecting { at_window: 7 }, true),
            (
                ClientProfile::Reconnecting {
                    leave_at: 3,
                    rejoin_at: 6,
                },
                false,
            ),
        ],
        12,
    )
    .expect("contract holds");
    assert_eq!(out.evicted_too_slow, 1);
    assert_eq!(out.departures_gone, 2);
    assert_eq!(out.reconnects, 1);
    assert_eq!(
        out.connections as usize,
        out.evicted_too_slow + out.departures_gone + out.departures_shutdown
    );
}
