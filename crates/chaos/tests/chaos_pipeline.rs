//! Full-stack differential: chaos drives *real* pipeline traffic — not
//! probe items — through the faulty virtual transport, the surviving
//! stream feeds the actual analysis pipeline, and the comparison is the
//! product itself: the TSV bytes `dnsobs` would write to disk.
//!
//! - Under a **lossless** schedule (stalls and segmentation only) the
//!   chaos run must be byte-identical to a golden single-process run:
//!   reordering, chopping, and delay are invisible to the data product.
//! - Under **lossy** schedules the bytes legitimately differ, but they
//!   must equal the TSV of the oracle's predicted survivor stream — the
//!   fault schedule plus the ground truth fully determine the output,
//!   with every divergence from golden accounted by the drop ledger.

use chaos::{check, plans_for, run as chaos_run, FaultProfile, SensorInput, SensorPlan};
use dns_observatory::{tsv, Dataset, ObservatoryConfig, ThreadedPipeline, TxSummary};
use feed::SensorConfig;
use psl::Psl;
use simnet::{SimConfig, Simulation};

const SENSORS: usize = 3;
const DURATION: f64 = 1.2;

fn obs_config() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 500),
            (Dataset::Esld, 500),
            (Dataset::Qtype, 64),
        ],
        window_secs: 0.5,
        ..ObservatoryConfig::default()
    }
}

/// Simulate the deployment's traffic once: the full stream in emission
/// order plus each sensor's vantage slice.
fn world(seed: u64) -> (Vec<TxSummary>, Vec<Vec<TxSummary>>) {
    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::tiny()
    });
    let mut all = Vec::new();
    let mut slices = vec![Vec::new(); SENSORS];
    sim.run(DURATION, &mut |tx| {
        let summary = TxSummary::from_transaction(tx, &psl);
        slices[tx.sensor_index(SENSORS)].push(summary.clone());
        all.push(summary);
    });
    (all, slices)
}

fn datasets() -> Vec<Dataset> {
    obs_config().datasets.iter().map(|&(ds, _)| ds).collect()
}

/// Golden reference: the Observatory ingesting the raw stream in one
/// process, rendered to TSV.
fn golden(all: &[TxSummary]) -> Vec<(String, Vec<u8>)> {
    let store = ThreadedPipeline::new(obs_config(), 1).run_summaries(all.iter().cloned());
    tsv::render_store(&store, &datasets())
}

/// Run the deployment through the chaos transport under `plans`, audit
/// with the oracle, and render what the pipeline makes of the survivors.
fn chaos_tsv(
    seed: u64,
    slices: &[Vec<TxSummary>],
    plans: Vec<SensorPlan>,
) -> (Vec<(String, Vec<u8>)>, chaos::ChaosOutcome<TxSummary>) {
    let inputs = slices
        .iter()
        .enumerate()
        .map(|(s, items)| {
            let mut config = SensorConfig::new(s as u64);
            config.batch_items = 16;
            config.buffer_frames = 32;
            config.backoff.seed = seed.wrapping_mul(31).wrapping_add(s as u64);
            config.backoff.base_ms = 2;
            config.backoff.max_ms = 40;
            SensorInput {
                config,
                items: items.clone(),
                plan: plans[s].clone(),
            }
        })
        .collect();
    let outcome = chaos_run(inputs);
    check(&outcome).unwrap_or_else(|d| {
        panic!("pipeline chaos run diverged (seed={seed}): {d}");
    });
    let store =
        ThreadedPipeline::new(obs_config(), 1).run_summaries(outcome.delivered.iter().cloned());
    (tsv::render_store(&store, &datasets()), outcome)
}

fn assert_same_tsv(a: &[(String, Vec<u8>)], b: &[(String, Vec<u8>)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: window count differs");
    for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(b) {
        assert_eq!(name_a, name_b, "{what}: window sequence differs");
        assert_eq!(
            bytes_a, bytes_b,
            "{what}: TSV for {name_a} is not byte-identical"
        );
    }
}

/// Stalls, reordering across sensors, chopped writes: none of it may
/// leave a fingerprint in the data product.
#[test]
fn lossless_chaos_is_byte_identical_to_golden() {
    for seed in [3u64, 11] {
        let (all, slices) = world(seed);
        assert!(all.len() > 200, "tiny world too small: {} txs", all.len());
        let reference = golden(&all);
        let plans = plans_for(seed, SENSORS as u64, &FaultProfile::lossless());
        let (chaotic, outcome) = chaos_tsv(seed, &slices, plans);
        assert_eq!(
            outcome.delivered.len(),
            all.len(),
            "seed {seed}: lossless run lost items"
        );
        assert_same_tsv(&reference, &chaotic, &format!("seed {seed} lossless"));
    }
}

/// Under genuinely lossy schedules the output differs from golden, but
/// it must equal the TSV of the oracle's predicted survivor stream: the
/// ground truth plus the fault schedule fully determine the product.
#[test]
fn lossy_chaos_matches_predicted_survivors() {
    let mut saw_loss = false;
    for profile in [
        FaultProfile::light(),
        FaultProfile::heavy(),
        FaultProfile::flaky(),
    ] {
        for seed in [7u64, 21] {
            let (all, slices) = world(seed);
            let plans = plans_for(seed, SENSORS as u64, &profile);
            let (chaotic, outcome) = chaos_tsv(seed, &slices, plans);
            let predicted = chaos::predicted_delivery(&outcome);
            let store = ThreadedPipeline::new(obs_config(), 1).run_summaries(predicted);
            let replayed = tsv::render_store(&store, &datasets());
            assert_same_tsv(
                &replayed,
                &chaotic,
                &format!("seed {seed} profile {}", profile.name),
            );
            if outcome.delivered.len() < all.len() {
                saw_loss = true;
            }
        }
    }
    assert!(
        saw_loss,
        "no lossy schedule actually lost an item — profiles miscalibrated"
    );
}
