#!/usr/bin/env bash
# Workspace lint gate: formatting and clippy, both zero-tolerance.
#
# Usage: ./scripts/ci-lint.sh
# Exit codes: 0 clean, 1 violations.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "ci-lint: cargo fmt --check"
cargo fmt --all -- --check

echo "ci-lint: cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "ci-lint: OK"
