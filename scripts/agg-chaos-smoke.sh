#!/usr/bin/env bash
# Aggregator chaos smoke check: ship three virtual collectors' serialized
# sketch state through the seeded faulty transport (crates/chaos) and
# verify the real AggregatorCore seals exactly the reference merge of the
# predicted survivor set — stated global error bounds equal to the sum of
# the contributing per-upstream bounds, chunk loss accounted as merge
# conflicts. Release mode, fixed matrix of seeds × fault profiles.
#
# Usage: ./scripts/agg-chaos-smoke.sh [seeds-per-profile] [profile ...]
#   seeds-per-profile  default 40
#   profile            lossless | light | heavy | flaky (default: all)
# Exit codes: 0 ok, 1 divergence found, 2 cannot build.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-40}"
shift $(( $# > 0 ? 1 : 0 ))

echo "agg-chaos-smoke: building release sweep example..."
cargo build --release -q -p chaos --example agg_chaos_sweep || {
    echo "agg-chaos-smoke: build failed" >&2
    exit 2
}

echo "agg-chaos-smoke: ${SEEDS} seeds per profile (${*:-all profiles})"
exec ./target/release/examples/agg_chaos_sweep "$SEEDS" "$@"
