#!/usr/bin/env bash
# Throughput smoke check: fail if the pipeline's tx/s (BENCH_pipeline.json)
# or the feed transport's loopback tx/s (BENCH_feed.json) regressed more
# than 20 % against the committed baselines.
#
# Usage: ./scripts/bench-smoke.sh
# Exit codes: 0 ok, 1 regression, 2 cannot run (no baseline / bad output).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_pipeline.json
if [ ! -f "$BASELINE" ]; then
    echo "bench-smoke: no $BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin pipeline_throughput" >&2
    exit 2
fi

base=$(sed -n 's/.*"smoke_tx_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$BASELINE" | head -n1)
if [ -z "$base" ]; then
    echo "bench-smoke: $BASELINE lacks a smoke_tx_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release bench binary..."
cargo build --release -q -p bench --bin pipeline_throughput

out=$(./target/release/pipeline_throughput --smoke)
cur=$(printf '%s\n' "$out" | sed -n 's/^smoke_tx_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$cur" ]; then
    echo "bench-smoke: could not parse smoke output:" >&2
    printf '%s\n' "$out" >&2
    exit 2
fi

echo "bench-smoke: baseline ${base} tx/s, current ${cur} tx/s"
awk -v cur="$cur" -v base="$base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — %.0f tx/s is below the 20%% floor (%.0f tx/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — within 20%% of baseline (floor %.0f tx/s)\n", floor;
}'

FEED_BASELINE=BENCH_feed.json
if [ ! -f "$FEED_BASELINE" ]; then
    echo "bench-smoke: no $FEED_BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin feed_throughput" >&2
    exit 2
fi

feed_base=$(sed -n 's/.*"feed_smoke_tx_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$FEED_BASELINE" | head -n1)
if [ -z "$feed_base" ]; then
    echo "bench-smoke: $FEED_BASELINE lacks a feed_smoke_tx_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release feed bench binary..."
cargo build --release -q -p bench --bin feed_throughput

feed_out=$(./target/release/feed_throughput --smoke)
feed_cur=$(printf '%s\n' "$feed_out" | sed -n 's/^feed_smoke_tx_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$feed_cur" ]; then
    echo "bench-smoke: could not parse feed smoke output:" >&2
    printf '%s\n' "$feed_out" >&2
    exit 2
fi

echo "bench-smoke: feed baseline ${feed_base} tx/s, current ${feed_cur} tx/s"
awk -v cur="$feed_cur" -v base="$feed_base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — feed %.0f tx/s is below the 20%% floor (%.0f tx/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — feed within 20%% of baseline (floor %.0f tx/s)\n", floor;
}'

# Append this run to the performance history so drift is visible across
# commits, not just against the committed baseline.
HISTORY=BENCH_history.jsonl
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
printf '{"timestamp":"%s","commit":"%s","smoke_tx_per_sec":%s,"feed_smoke_tx_per_sec":%s}\n' \
    "$timestamp" "$commit" "$cur" "$feed_cur" >> "$HISTORY"
echo "bench-smoke: appended run to $HISTORY"
