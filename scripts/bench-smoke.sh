#!/usr/bin/env bash
# Throughput smoke check: fail if the pipeline's tx/s (BENCH_pipeline.json),
# the feed transport's loopback tx/s (BENCH_feed.json), the federated
# aggregator's merge records/s (BENCH_aggregate.json), the historical
# store's query rate over three months of windows (BENCH_store.json), or
# the subscription broker's fanout frames/s (BENCH_pubsub.json)
# regressed more than 20 % against the committed baselines. The store
# bench also hard-fails if any query shape exceeds its 100 ms budget.
#
# On machines with >= 2 cores the check also gates on *scaling shape*
# (pipeline_throughput --scaling): the best workers>1 configuration must
# beat the single-threaded fold by >= 1.5x, and no grid point may run
# slower than its predecessor config (monotone non-negative scaling,
# 10 % tolerance). Absolute tx/s drifts with hardware; shape should not.
#
# Usage: ./scripts/bench-smoke.sh
# Exit codes: 0 ok, 1 regression, 2 cannot run (no baseline / bad output).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_pipeline.json
if [ ! -f "$BASELINE" ]; then
    echo "bench-smoke: no $BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin pipeline_throughput" >&2
    exit 2
fi

base=$(sed -n 's/.*"smoke_tx_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$BASELINE" | head -n1)
if [ -z "$base" ]; then
    echo "bench-smoke: $BASELINE lacks a smoke_tx_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release bench binary..."
cargo build --release -q -p bench --bin pipeline_throughput

out=$(./target/release/pipeline_throughput --smoke)
cur=$(printf '%s\n' "$out" | sed -n 's/^smoke_tx_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$cur" ]; then
    echo "bench-smoke: could not parse smoke output:" >&2
    printf '%s\n' "$out" >&2
    exit 2
fi

echo "bench-smoke: baseline ${base} tx/s, current ${cur} tx/s"
awk -v cur="$cur" -v base="$base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — %.0f tx/s is below the 20%% floor (%.0f tx/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — within 20%% of baseline (floor %.0f tx/s)\n", floor;
}'

FEED_BASELINE=BENCH_feed.json
if [ ! -f "$FEED_BASELINE" ]; then
    echo "bench-smoke: no $FEED_BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin feed_throughput" >&2
    exit 2
fi

feed_base=$(sed -n 's/.*"feed_smoke_tx_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$FEED_BASELINE" | head -n1)
if [ -z "$feed_base" ]; then
    echo "bench-smoke: $FEED_BASELINE lacks a feed_smoke_tx_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release feed bench binary..."
cargo build --release -q -p bench --bin feed_throughput

feed_out=$(./target/release/feed_throughput --smoke)
feed_cur=$(printf '%s\n' "$feed_out" | sed -n 's/^feed_smoke_tx_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$feed_cur" ]; then
    echo "bench-smoke: could not parse feed smoke output:" >&2
    printf '%s\n' "$feed_out" >&2
    exit 2
fi

echo "bench-smoke: feed baseline ${feed_base} tx/s, current ${feed_cur} tx/s"
awk -v cur="$feed_cur" -v base="$feed_base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — feed %.0f tx/s is below the 20%% floor (%.0f tx/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — feed within 20%% of baseline (floor %.0f tx/s)\n", floor;
}'

AGG_BASELINE=BENCH_aggregate.json
if [ ! -f "$AGG_BASELINE" ]; then
    echo "bench-smoke: no $AGG_BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin aggregate_throughput" >&2
    exit 2
fi

agg_base=$(sed -n 's/.*"aggregate_smoke_records_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$AGG_BASELINE" | head -n1)
if [ -z "$agg_base" ]; then
    echo "bench-smoke: $AGG_BASELINE lacks an aggregate_smoke_records_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release aggregate bench binary..."
cargo build --release -q -p bench --bin aggregate_throughput

agg_out=$(./target/release/aggregate_throughput --smoke)
agg_cur=$(printf '%s\n' "$agg_out" | sed -n 's/^aggregate_smoke_records_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$agg_cur" ]; then
    echo "bench-smoke: could not parse aggregate smoke output:" >&2
    printf '%s\n' "$agg_out" >&2
    exit 2
fi

echo "bench-smoke: aggregate baseline ${agg_base} records/s, current ${agg_cur} records/s"
awk -v cur="$agg_cur" -v base="$agg_base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — aggregate %.0f records/s is below the 20%% floor (%.0f records/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — aggregate within 20%% of baseline (floor %.0f records/s)\n", floor;
}'

STORE_BASELINE=BENCH_store.json
if [ ! -f "$STORE_BASELINE" ]; then
    echo "bench-smoke: no $STORE_BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin query_latency" >&2
    exit 2
fi

store_base=$(sed -n 's/.*"store_smoke_queries_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$STORE_BASELINE" | head -n1)
if [ -z "$store_base" ]; then
    echo "bench-smoke: $STORE_BASELINE lacks a store_smoke_queries_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release store query bench binary..."
cargo build --release -q -p bench --bin query_latency

store_out=$(./target/release/query_latency --smoke)
store_cur=$(printf '%s\n' "$store_out" | sed -n 's/^store_smoke_queries_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$store_cur" ]; then
    echo "bench-smoke: could not parse store query smoke output:" >&2
    printf '%s\n' "$store_out" >&2
    exit 2
fi

echo "bench-smoke: store query baseline ${store_base} queries/s, current ${store_cur} queries/s"
awk -v cur="$store_cur" -v base="$store_base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — store %.1f queries/s is below the 20%% floor (%.1f queries/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — store queries within 20%% of baseline (floor %.1f queries/s)\n", floor;
}'

PUBSUB_BASELINE=BENCH_pubsub.json
if [ ! -f "$PUBSUB_BASELINE" ]; then
    echo "bench-smoke: no $PUBSUB_BASELINE baseline; generate one with:" >&2
    echo "  cargo run --release -p bench --bin subscribe_fanout" >&2
    exit 2
fi

pubsub_base=$(sed -n 's/.*"pubsub_smoke_fanout_frames_per_sec": *\([0-9][0-9.]*\).*/\1/p' "$PUBSUB_BASELINE" | head -n1)
if [ -z "$pubsub_base" ]; then
    echo "bench-smoke: $PUBSUB_BASELINE lacks a pubsub_smoke_fanout_frames_per_sec field" >&2
    exit 2
fi

echo "bench-smoke: building release pubsub fanout bench binary..."
cargo build --release -q -p bench --bin subscribe_fanout

pubsub_out=$(./target/release/subscribe_fanout --smoke)
pubsub_cur=$(printf '%s\n' "$pubsub_out" | sed -n 's/^pubsub_smoke_fanout_frames_per_sec=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$pubsub_cur" ]; then
    echo "bench-smoke: could not parse pubsub fanout smoke output:" >&2
    printf '%s\n' "$pubsub_out" >&2
    exit 2
fi

echo "bench-smoke: pubsub fanout baseline ${pubsub_base} frames/s, current ${pubsub_cur} frames/s"
awk -v cur="$pubsub_cur" -v base="$pubsub_base" 'BEGIN {
    floor = 0.8 * base;
    if (cur < floor) {
        printf "bench-smoke: FAIL — pubsub fanout %.0f frames/s is below the 20%% floor (%.0f frames/s)\n", cur, floor;
        exit 1;
    }
    printf "bench-smoke: OK — pubsub fanout within 20%% of baseline (floor %.0f frames/s)\n", floor;
}'

# Tracing-tax gate: the pipeline with a flight recorder attached must
# stay within 5 % of the untraced run. Absolute tx/s drifts with
# hardware; the on/off ratio on the same machine should not.
echo "bench-smoke: measuring tracing overhead..."
trace_out=$(./target/release/pipeline_throughput --trace-overhead)
printf '%s\n' "$trace_out" | grep '^trace_'
trace_ratio=$(printf '%s\n' "$trace_out" \
    | sed -n 's/^trace_overhead_ratio=\([0-9][0-9.]*\)$/\1/p' | head -n1)
if [ -z "$trace_ratio" ]; then
    echo "bench-smoke: could not parse trace-overhead output:" >&2
    printf '%s\n' "$trace_out" >&2
    exit 2
fi
awk -v r="$trace_ratio" 'BEGIN {
    if (r < 0.95) {
        printf "bench-smoke: FAIL — tracing-on runs at %.1f%% of tracing-off (gate 95%%)\n", 100 * r;
        exit 1;
    }
    printf "bench-smoke: OK — tracing-on runs at %.1f%% of tracing-off (gate 95%%)\n", 100 * r;
}'

# Scaling-shape gate: only meaningful with real parallelism available.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
    echo "bench-smoke: running scaling sweep on ${cores} cores..."
    scaling_out=$(./target/release/pipeline_throughput --scaling)
    printf '%s\n' "$scaling_out" | grep '^scaling_'
    speedup=$(printf '%s\n' "$scaling_out" \
        | sed -n 's/^scaling_speedup=\([0-9][0-9.]*\)$/\1/p' | head -n1)
    monotone=$(printf '%s\n' "$scaling_out" \
        | sed -n 's/^scaling_monotone=\(.*\)$/\1/p' | head -n1)
    if [ -z "$speedup" ] || [ -z "$monotone" ]; then
        echo "bench-smoke: could not parse scaling output" >&2
        exit 2
    fi
    awk -v s="$speedup" 'BEGIN {
        if (s < 1.5) {
            printf "bench-smoke: FAIL — parallel speedup %.2fx is below the 1.5x gate\n", s;
            exit 1;
        }
        printf "bench-smoke: OK — parallel speedup %.2fx (gate 1.5x)\n", s;
    }'
    if [ "$monotone" != "ok" ]; then
        echo "bench-smoke: FAIL — scaling grid is not monotone: $monotone" >&2
        exit 1
    fi
    echo "bench-smoke: OK — scaling grid is monotone non-negative"
else
    echo "bench-smoke: 1 core — skipping the scaling-shape gate (needs >= 2)"
fi

# Append this run to the performance history so drift is visible across
# commits, not just against the committed baseline. (--scaling appends
# its own curve record when it runs.)
HISTORY=BENCH_history.jsonl
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
printf '{"timestamp":"%s","commit":"%s","smoke_tx_per_sec":%s,"feed_smoke_tx_per_sec":%s,"aggregate_smoke_records_per_sec":%s,"store_smoke_queries_per_sec":%s,"pubsub_smoke_fanout_frames_per_sec":%s,"trace_overhead_ratio":%s}\n' \
    "$timestamp" "$commit" "$cur" "$feed_cur" "$agg_cur" "$store_cur" "$pubsub_cur" "$trace_ratio" >> "$HISTORY"
echo "bench-smoke: appended run to $HISTORY"
