#!/usr/bin/env bash
# Chaos smoke check: drive the feed sensor→collector path through the
# deterministic fault-injection harness (crates/chaos) across a fixed
# matrix of seeds × fault profiles, in release mode, and fail on the
# first unaccounted divergence. The chaos_smoke binary prints a minimized
# repro (seed + smallest fault script) when a run diverges.
#
# Usage: ./scripts/chaos-smoke.sh [seeds-per-profile] [profile ...]
#   seeds-per-profile  default 200
#   profile            lossless | light | heavy | flaky (default: all)
# Exit codes: 0 ok, 1 divergence found, 2 cannot build.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-200}"
shift $(( $# > 0 ? 1 : 0 ))

echo "chaos-smoke: building release chaos binary..."
cargo build --release -q -p chaos --bin chaos_smoke || {
    echo "chaos-smoke: build failed" >&2
    exit 2
}

echo "chaos-smoke: ${SEEDS} seeds per profile (${*:-all profiles})"
exec ./target/release/chaos_smoke "$SEEDS" "$@"
